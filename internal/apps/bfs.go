package apps

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/syncrun"
	"repro/internal/wire"
)

// BFSResult is the per-node output of the BFS algorithms.
type BFSResult struct {
	// Dist is the distance to the closest source.
	Dist int
	// Parent is the BFS-tree parent (-1 at sources).
	Parent graph.NodeID
	// Source is the closest source (smallest ID on ties at equal
	// distance along the tie-break below).
	Source graph.NodeID
}

// BFS is the event-driven synchronous (multi-)source BFS of Corollary 1.2:
// sources flood "join" proposals; a node adopts the first proposal
// (smallest sender ID within the pulse) as its parent and distance, then
// proposes to its own neighbors. Each node outputs a BFSResult.
//
// T(A) = max distance to the closest source (the paper's D1), M(A) = 2m.
type BFS struct {
	// Sources lists the BFS sources; one element gives single-source BFS.
	Sources []graph.NodeID

	res BFSResult
	set bool
}

var _ syncrun.Handler = (*BFS)(nil)

// Init implements syncrun.Handler.
func (h *BFS) Init(n syncrun.API) {
	for _, s := range h.Sources {
		if n.ID() != s {
			continue
		}
		h.set = true
		h.res = BFSResult{Dist: 0, Parent: -1, Source: s}
		n.OutputBody(encBFSOut(h.res))
		for _, nb := range n.Neighbors() {
			n.Send(nb.Node, wire.Body{Kind: kindBFSJoin, A: int64(s)})
		}
		return
	}
}

// Pulse implements syncrun.Handler.
func (h *BFS) Pulse(n syncrun.API, p int, recvd []syncrun.Incoming) {
	if h.set || len(recvd) == 0 {
		return
	}
	// Deterministic tie-break: smallest claimed source, then smallest
	// sender.
	best := recvd[0]
	bestSrc := graph.NodeID(best.Body.A)
	for _, in := range recvd[1:] {
		src := graph.NodeID(in.Body.A)
		if src < bestSrc || (src == bestSrc && in.From < best.From) {
			best, bestSrc = in, src
		}
	}
	h.set = true
	h.res = BFSResult{Dist: p, Parent: best.From, Source: bestSrc}
	n.OutputBody(encBFSOut(h.res))
	for _, nb := range n.Neighbors() {
		n.Send(nb.Node, wire.Body{Kind: kindBFSJoin, A: int64(bestSrc)})
	}
}

// CheckBFSOutputs verifies a full set of BFS outputs against the reference
// distances; it returns the offending node or -1.
func CheckBFSOutputs(g *graph.Graph, sources []graph.NodeID, outputs map[graph.NodeID]any) graph.NodeID {
	dist, _ := g.MultiBFS(sources)
	for v := 0; v < g.N(); v++ {
		out, ok := outputs[graph.NodeID(v)]
		if !ok {
			return graph.NodeID(v)
		}
		res, ok := out.(BFSResult)
		if !ok || res.Dist != dist[v] {
			return graph.NodeID(v)
		}
		if res.Dist > 0 {
			// Parent must be one step closer.
			if dist[res.Parent] != res.Dist-1 || g.EdgeBetween(graph.NodeID(v), res.Parent) < 0 {
				return graph.NodeID(v)
			}
		}
	}
	return -1
}

// SortedSources returns a sorted copy of sources (the algorithms don't
// require order, but deterministic tooling does).
func SortedSources(sources []graph.NodeID) []graph.NodeID {
	out := append([]graph.NodeID(nil), sources...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
