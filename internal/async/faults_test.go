package async

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/wire"
)

// segSpray is the fault-plane segment workload: node 0 sprays a
// segment-carrying message at every neighbor and each node re-sprays
// once on first receipt. Every receipt folds the incoming segment's
// words into a commutative checksum published as the node's output, so
// cross-mode comparison covers segment *contents*. Dropped attempts and
// exhausted budgets must release every segment exactly once — the
// matrix and fuzz tests below assert a zero arena Live count after
// quiescence.
type segSpray struct {
	NopAck
	sent bool
	sum  int64
}

func (h *segSpray) spray(n *Node) {
	h.sent = true
	for _, nb := range n.Neighbors() {
		seg, view := n.Arena().Alloc(4)
		for i := range view {
			view[i] = int32(int(n.ID()) + i)
		}
		n.Send(nb.Node, Msg{Proto: 7, Body: wire.Body{Kind: 2, A: int64(n.ID()), Seg: seg}})
	}
}

func (h *segSpray) Init(n *Node) {
	if n.ID() == 0 {
		h.spray(n)
	}
}

func (h *segSpray) Recv(n *Node, from graph.NodeID, m Msg) {
	for _, w := range n.Arena().Data(m.Body.Seg) {
		h.sum += int64(w) * (int64(from) + 3)
	}
	n.Output(h.sum)
	if !h.sent {
		h.spray(n)
	}
}

func (h *segSpray) CloneStateInto(dst Handler) {
	d := dst.(*segSpray)
	d.sent, d.sum = h.sent, h.sum
}

// stripSegHandles zeroes the arena segment handles inside a Result's
// trace. Handles are process-local addresses — the shard plane already
// re-carves them on receive, and under parallel execution the shared
// arena hands out offsets in worker-interleaving order — so the
// cross-mode determinism contract covers segment contents (checked via
// segSpray's checksum outputs), not offsets.
func stripSegHandles(r Result) Result {
	if len(r.Trace) > 0 {
		tr := make([]TraceEntry, len(r.Trace))
		copy(tr, r.Trace)
		for i := range tr {
			tr[i].Msg.Body.Seg = wire.Seg{}
		}
		r.Trace = tr
	}
	return r
}

func TestFaultSpecParse(t *testing.T) {
	fs, err := ParseFaultSpec("crash:p=0.01,drop:p=0.05,budget=3,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	if fs.CrashP != 0.01 || fs.DropP != 0.05 || fs.Budget != 3 || fs.Seed != 7 {
		t.Fatalf("parsed %+v", fs)
	}
	// String round-trips through the parser.
	back, err := ParseFaultSpec(fs.String())
	if err != nil {
		t.Fatal(err)
	}
	if *back != *fs {
		t.Fatalf("round-trip %+v != %+v", back, fs)
	}
	for _, none := range []string{"", "none"} {
		if got, err := ParseFaultSpec(none); err != nil || got != nil {
			t.Fatalf("ParseFaultSpec(%q) = %v, %v", none, got, err)
		}
	}
	for _, bad := range []string{
		"crash:p=1.5", "drop:p=-1", "budget=999", "budget=x",
		"what", "backoff=2", "link:p=1",
	} {
		if _, err := ParseFaultSpec(bad); err == nil {
			t.Fatalf("ParseFaultSpec(%q) accepted", bad)
		}
	}
}

// TestFaultSchedulePurity: every fault decision is a pure function of its
// arguments — the determinism bedrock the cross-mode and cross-process
// guarantees rest on.
func TestFaultSchedulePurity(t *testing.T) {
	fs := &FaultSchedule{Seed: 9, CrashP: 0.1, DropP: 0.2, LinkP: 0.05, Budget: 3}
	for i := 0; i < 50; i++ {
		v := graph.NodeID(i % 7)
		w := graph.NodeID((i + 3) % 7)
		e := uint64(i)
		if fs.CrashedEpoch(v, e) != fs.CrashedEpoch(v, e) {
			t.Fatal("CrashedEpoch not pure")
		}
		if fs.LinkDownEpoch(v, w, e) != fs.LinkDownEpoch(w, v, e) {
			t.Fatal("LinkDownEpoch not symmetric in the endpoint pair")
		}
		if fs.Drop(v, w, uint64(i)) != fs.Drop(v, w, uint64(i)) {
			t.Fatal("Drop not pure")
		}
	}
	// CrashedSet is ascending and matches CrashedEpoch.
	set := fs.CrashedSet(200, 4)
	for i, v := range set {
		if i > 0 && set[i-1] >= v {
			t.Fatal("CrashedSet not ascending")
		}
		if !fs.CrashedEpoch(v, 4) {
			t.Fatalf("CrashedSet includes non-crashed %d", v)
		}
	}
	// Backoff honors the bounded-lag window safety condition: never below
	// the adversary lookahead, never above the model's unit delay.
	for attempt := uint8(0); attempt < 10; attempt++ {
		for _, la := range []float64{1.0 / 1024, 0.25, 1} {
			b := fs.backoff(attempt, la)
			if b < la || b > 1 {
				t.Fatalf("backoff(%d, %g) = %g outside [lookahead, 1]", attempt, la, b)
			}
		}
	}
}

// TestFaultMatrixModes is the tentpole determinism contract: for the full
// fault-schedule matrix across graphs and seeds, Single, bounded-lag
// Multi, and speculative executions must produce deep-equal Results —
// fault decisions, retransmissions, undeliverable abandonments, traces
// and all. Run under -race it is also the fault plane's data-race test.
func TestFaultMatrixModes(t *testing.T) {
	anyDropped := false
	anyUndeliv := false
	for _, seed := range []uint64{3, 17} {
		graphs := matrixGraphs(seed)[:4]
		for _, fs := range StandardFaultSchedules(seed) {
			for _, tg := range graphs {
				adv := WithFaults(SeededRandom{Seed: seed}, fs)
				mkFlood := func(graph.NodeID) Handler { return &multiFlood{k: 3} }
				mkSeg := func(graph.NodeID) Handler { return &segSpray{} }
				for name, mk := range map[string]func(graph.NodeID) Handler{"multiflood": mkFlood, "segspray": mkSeg} {
					serial := New(tg.g, adv, mk).WithMode(ModeSingle).KeepTrace()
					raw := serial.Run()
					want := stripSegHandles(raw)
					if live := serial.Arena().Live(); live != 0 {
						t.Fatalf("seed=%d fs=%s graph=%s wl=%s: serial leaked %d segments",
							seed, fs, tg.name, name, live)
					}
					multi := New(tg.g, adv, mk).WithMode(ModeMulti).
						WithWorkers(4).WithMinParallel(1).KeepTrace()
					if got := stripSegHandles(multi.Run()); !reflect.DeepEqual(want, got) {
						t.Fatalf("seed=%d fs=%s graph=%s wl=%s: Multi differs from serial\nserial: %+v\nmulti:  %+v",
							seed, fs, tg.name, name, summarize(want), summarize(got))
					}
					if live := multi.Arena().Live(); live != 0 {
						t.Fatalf("seed=%d fs=%s graph=%s wl=%s: Multi leaked %d segments",
							seed, fs, tg.name, name, live)
					}
					spec := New(tg.g, adv, mk).WithMode(ModeSpec).
						WithWorkers(4).WithMinParallel(1).KeepTrace()
					if got := stripSegHandles(spec.Run()); !reflect.DeepEqual(want, got) {
						t.Fatalf("seed=%d fs=%s graph=%s wl=%s: Spec differs from serial\nserial: %+v\nspec:   %+v",
							seed, fs, tg.name, name, summarize(want), summarize(got))
					}
					if live := spec.Arena().Live(); live != 0 {
						t.Fatalf("seed=%d fs=%s graph=%s wl=%s: Spec leaked %d segments",
							seed, fs, tg.name, name, live)
					}
					// Drops either retransmit or abandon — no third fate.
					if want.Dropped != want.Retrans+want.Undeliverable {
						t.Fatalf("dropped %d != retrans %d + undeliverable %d",
							want.Dropped, want.Retrans, want.Undeliverable)
					}
					nUndeliv := uint64(0)
					for _, te := range want.Trace {
						if te.Kind == TraceUndeliverable {
							nUndeliv++
						}
					}
					if nUndeliv != want.Undeliverable {
						t.Fatalf("trace has %d undeliverable entries, counter says %d",
							nUndeliv, want.Undeliverable)
					}
					anyDropped = anyDropped || want.Dropped > 0
					anyUndeliv = anyUndeliv || want.Undeliverable > 0
				}
			}
		}
	}
	if !anyDropped || !anyUndeliv {
		t.Fatalf("matrix never exercised the fault plane (dropped=%v undeliverable=%v)",
			anyDropped, anyUndeliv)
	}
}

// TestFaultFreeSchedulesMatchBaseline: wrapping an adversary in an inert
// schedule (or none) must not perturb a single byte of the run.
func TestFaultFreeSchedulesMatchBaseline(t *testing.T) {
	g := graph.Grid(6, 7)
	mk := func(graph.NodeID) Handler { return &multiFlood{k: 2} }
	adv := SeededRandom{Seed: 5}
	want := New(g, adv, mk).KeepTrace().Run()
	got := New(g, WithFaults(adv, &FaultSchedule{Seed: 1}), mk).KeepTrace().Run()
	if !reflect.DeepEqual(want, got) {
		t.Fatal("inert fault schedule changed the run")
	}
	if got.Dropped != 0 || got.Retrans != 0 || got.Undeliverable != 0 {
		t.Fatalf("inert schedule reported faults: %+v", summarize(got))
	}
}

// TestFaultRetransDelivers: with a generous budget every dropped message
// is eventually delivered, so outputs match the fault-free run even
// though the delivery schedule (and therefore timings) differ.
func TestFaultRetransDelivers(t *testing.T) {
	g := graph.RandomConnected(40, 90, 13)
	mk := func(graph.NodeID) Handler { return &multiFlood{k: 2} }
	adv := SeededRandom{Seed: 11}
	clean := New(g, adv, mk).Run()
	fs := &FaultSchedule{Seed: 21, DropP: 0.3, Budget: 64}
	faulty := New(g, WithFaults(adv, fs), mk).Run()
	if faulty.Dropped == 0 || faulty.Retrans == 0 {
		t.Fatalf("drop schedule did not drop (dropped=%d)", faulty.Dropped)
	}
	if faulty.Undeliverable != 0 {
		t.Fatalf("budget 64 exhausted %d times at p=0.3", faulty.Undeliverable)
	}
	if !reflect.DeepEqual(clean.Outputs, faulty.Outputs) {
		t.Fatal("retransmission did not converge to the fault-free outputs")
	}
	if faulty.Time <= clean.Time {
		t.Fatalf("retransmissions cost no time: %g <= %g", faulty.Time, clean.Time)
	}
}

// TestFaultBudgetExhaustionQuiesces: a zero budget turns every drop into
// an Undeliverable abandonment — the run must quiesce (not hang) and the
// abandoned link must remain usable for later traffic.
func TestFaultBudgetExhaustionQuiesces(t *testing.T) {
	g := graph.RandomConnected(40, 90, 13)
	mk := func(graph.NodeID) Handler { return &segSpray{} }
	fs := &FaultSchedule{Seed: 5, DropP: 0.4, Budget: 0}
	s := New(g, WithFaults(SeededRandom{Seed: 11}, fs), mk).KeepTrace()
	res := s.Run()
	if res.Undeliverable == 0 {
		t.Fatal("budget 0 at p=0.4 abandoned nothing")
	}
	if res.Dropped != res.Undeliverable {
		t.Fatalf("budget 0 retransmitted: dropped=%d undeliverable=%d", res.Dropped, res.Undeliverable)
	}
	if live := s.Arena().Live(); live != 0 {
		t.Fatalf("abandonment leaked %d segments", live)
	}
}

// TestFaultSteadyStateAllocs mirrors TestSpecRollbackSteadyStateAllocs
// for the drop/retransmit path: growing the message count across Reset
// cycles must not grow allocations, and every cycle must leave the arena
// empty — the exactly-once release pin for dropped-message segments.
func TestFaultSteadyStateAllocs(t *testing.T) {
	g := graph.Path(3)
	fs := &FaultSchedule{Seed: 31, DropP: 0.25, Budget: 64}
	adv := WithFaults(twoRate{}, fs)
	cycle := func(msgs int) func() {
		mk := func(graph.NodeID) Handler { return &pingChain{remaining: msgs} }
		s := New(g, adv, mk)
		res := s.Run()
		if res.Dropped == 0 || res.Retrans == 0 {
			t.Fatalf("workload did not exercise the drop path: %+v", summarize(res))
		}
		if res.Undeliverable != 0 {
			t.Fatalf("budget 64 exhausted %d times at p=0.25", res.Undeliverable)
		}
		return func() {
			s.Reset(adv, mk)
			if res := s.Run(); res.Msgs != uint64(2*msgs) {
				t.Fatalf("sent %d messages, want %d", res.Msgs, 2*msgs)
			}
			if live := s.Arena().Live(); live != 0 {
				t.Fatalf("cycle leaked %d segments", live)
			}
		}
	}
	const short, long = 200, 2200
	runShort := cycle(short)
	runLong := cycle(long)
	a1 := testing.AllocsPerRun(5, runShort)
	a2 := testing.AllocsPerRun(5, runLong)
	const slack = 8
	if extra := a2 - a1; extra > slack {
		t.Fatalf("the %d extra messages allocated %.1f times across Reset (%.4f allocs/msg); want 0",
			2*(long-short), extra, extra/float64(2*(long-short)))
	}
}

// FuzzFaultSchedule feeds fuzzer-chosen bytes into both the delay
// adversary and the fault schedule, then replays serially and in both
// parallel modes: Results must stay byte-identical and the arena must
// come back empty (dropped-message segments released exactly once).
func FuzzFaultSchedule(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{255, 128, 3, 9, 77})
	f.Add([]byte("fault tolerantly"))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	g := graph.RandomConnected(24, 50, 11)
	f.Fuzz(func(t *testing.T, data []byte) {
		fs := &FaultSchedule{Seed: 1}
		for i, b := range data {
			fs.Seed = fs.Seed*131 + uint64(b)
			switch i % 4 {
			case 0:
				fs.DropP = float64(b) / 512 // up to ~0.5
			case 1:
				fs.CrashP = float64(b) / 1024
			case 2:
				fs.LinkP = float64(b) / 1024
			case 3:
				fs.Budget = int(b) % 5
			}
		}
		if err := fs.Validate(); err != nil {
			t.Fatalf("derived schedule invalid: %v", err)
		}
		adv := WithFaults(fuzzDelays{data: data}, fs)
		mk := func(graph.NodeID) Handler { return &segSpray{} }
		serial := New(g, adv, mk).WithMode(ModeSingle).KeepTrace()
		want := stripSegHandles(serial.Run())
		if live := serial.Arena().Live(); live != 0 {
			t.Fatalf("serial leaked %d segments under %v", live, data)
		}
		for _, mode := range []ExecutionMode{ModeMulti, ModeSpec} {
			s := New(g, adv, mk).WithMode(mode).
				WithWorkers(3).WithMinParallel(1).KeepTrace()
			if got := stripSegHandles(s.Run()); !reflect.DeepEqual(want, got) {
				t.Fatalf("%s Result differs from serial under fuzzed faults %v", mode, data)
			}
			if live := s.Arena().Live(); live != 0 {
				t.Fatalf("%s leaked %d segments under %v", mode, live, data)
			}
		}
	})
}

// TestFaultyAdversaryName: the combinator surfaces the schedule in the
// adversary name so experiment tables identify faulty rows.
func TestFaultyAdversaryName(t *testing.T) {
	fs := &FaultSchedule{Seed: 7, DropP: 0.05, Budget: 3}
	adv := WithFaults(Fixed{D: 1}, fs)
	if name := adv.Name(); !strings.Contains(name, "faults") || !strings.Contains(name, "drop:p=0.05") {
		t.Fatalf("Faulty name %q hides the schedule", name)
	}
	if adv.MinDelay() != (Fixed{D: 1}).MinDelay() {
		t.Fatal("Faulty changed MinDelay")
	}
}
