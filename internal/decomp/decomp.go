// Package decomp builds the k-separated weak-diameter network decomposition
// of Rozhon–Ghaffari (Theorem 4.20, Appendix C): O(log n) color classes,
// each a set of clusters pairwise more than k apart, each cluster with a
// Steiner tree of radius O(k·log³n) in G, and every edge of G appearing in
// O(log⁴n) Steiner trees overall.
//
// The builder follows the published phase/step schedule faithfully —
// b = ⌈log₂ n⌉ phases over label bits, each phase a sequence of grow-steps
// in which blue clusters BFS out to distance k and either absorb or kill
// the red nodes that propose — and is deterministic. It executes centrally
// (the asynchronous distributed construction of §4.5 lives in
// internal/abfs and reuses this package's step structure); DESIGN.md
// records this substitution.
package decomp

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/graph"
)

// Tree is a rooted Steiner tree in G. Terminals are the cluster's member
// nodes; the tree may route through non-member (nonterminal) nodes.
type Tree struct {
	Root graph.NodeID
	// Parent maps every tree node except the root to its parent.
	Parent map[graph.NodeID]graph.NodeID
	// Children is the reverse of Parent, each list in ascending order.
	Children map[graph.NodeID][]graph.NodeID
	// DepthOf maps every tree node to its hop distance from the root.
	DepthOf map[graph.NodeID]int
}

// Has reports whether v participates in the tree (as terminal or Steiner
// node).
func (t *Tree) Has(v graph.NodeID) bool {
	if v == t.Root {
		return true
	}
	_, ok := t.Parent[v]
	return ok
}

// Depth returns the height of the tree (max depth over nodes).
func (t *Tree) Depth() int {
	max := 0
	for _, d := range t.DepthOf {
		if d > max {
			max = d
		}
	}
	return max
}

// Nodes returns all tree nodes in ascending order.
func (t *Tree) Nodes() []graph.NodeID {
	out := make([]graph.NodeID, 0, len(t.DepthOf))
	for v := range t.DepthOf {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Edges returns the (parent, child) tree edges.
func (t *Tree) Edges() [][2]graph.NodeID {
	out := make([][2]graph.NodeID, 0, len(t.Parent))
	for c, p := range t.Parent {
		out = append(out, [2]graph.NodeID{p, c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Cluster is one decomposition cluster: a set of member (terminal) nodes
// plus its Steiner tree.
type Cluster struct {
	// Label is the final b-bit label shared by members.
	Label uint64
	// Color is the color class index.
	Color int
	// Members lists terminal nodes in ascending order.
	Members []graph.NodeID
	// Tree spans Members (and possibly nonterminals).
	Tree *Tree
}

// Decomposition is the output of Build.
type Decomposition struct {
	K int
	// Colors[c] lists the clusters of color c.
	Colors [][]*Cluster
	// ColorOf maps each clustered node to its color.
	ColorOf map[graph.NodeID]int
	// ClusterOf maps each clustered node to its cluster.
	ClusterOf map[graph.NodeID]*Cluster
}

// Clusters returns all clusters across colors.
func (d *Decomposition) Clusters() []*Cluster {
	var out []*Cluster
	for _, cs := range d.Colors {
		out = append(out, cs...)
	}
	return out
}

// Build computes a k-separated weak-diameter network decomposition of the
// nodes in S (nil means all nodes). Deterministic.
func Build(g *graph.Graph, k int, s []graph.NodeID) *Decomposition {
	if k < 1 {
		panic(fmt.Sprintf("decomp: k must be >= 1, got %d", k))
	}
	living := make([]bool, g.N())
	remaining := 0
	if s == nil {
		for i := range living {
			living[i] = true
		}
		remaining = g.N()
	} else {
		for _, v := range s {
			if !living[v] {
				living[v] = true
				remaining++
			}
		}
	}
	d := &Decomposition{
		K:         k,
		ColorOf:   make(map[graph.NodeID]int),
		ClusterOf: make(map[graph.NodeID]*Cluster),
	}
	maxColors := 4*bits.Len(uint(g.N())) + 4
	for color := 0; remaining > 0; color++ {
		if color >= maxColors {
			panic("decomp: color count exceeded 4·log n — clustering is not halving")
		}
		clusters := onePartition(g, k, living)
		cleared := 0
		for _, c := range clusters {
			c.Color = color
			for _, v := range c.Members {
				living[v] = false
				cleared++
				d.ColorOf[v] = color
				d.ClusterOf[v] = c
			}
		}
		if cleared == 0 {
			panic("decomp: partition clustered zero nodes")
		}
		remaining -= cleared
		d.Colors = append(d.Colors, clusters)
	}
	return d
}

// phaseState carries the mutable per-run state of onePartition.
type phaseState struct {
	g      *graph.Graph
	k      int
	b      int
	alive  []bool   // alive within this partition run
	label  []uint64 // current label of alive nodes
	trees  map[uint64]*Tree
	member map[uint64]map[graph.NodeID]bool
}

// onePartition runs Lemma C.1: clusters at least half of the living nodes
// into >k-separated clusters and returns them. Nodes it kills stay for the
// next color.
func onePartition(g *graph.Graph, k int, living []bool) []*Cluster {
	st := &phaseState{
		g:      g,
		k:      k,
		alive:  make([]bool, g.N()),
		label:  make([]uint64, g.N()),
		trees:  make(map[uint64]*Tree),
		member: make(map[uint64]map[graph.NodeID]bool),
	}
	nLiving := 0
	for v := 0; v < g.N(); v++ {
		if living[v] {
			st.alive[v] = true
			nLiving++
			lab := uint64(v)
			st.label[v] = lab
			st.trees[lab] = &Tree{
				Root:     graph.NodeID(v),
				Parent:   make(map[graph.NodeID]graph.NodeID),
				Children: make(map[graph.NodeID][]graph.NodeID),
				DepthOf:  map[graph.NodeID]int{graph.NodeID(v): 0},
			}
			st.member[lab] = map[graph.NodeID]bool{graph.NodeID(v): true}
		}
	}
	if nLiving == 0 {
		return nil
	}
	st.b = bits.Len(uint(g.N()))
	for phase := 0; phase < st.b; phase++ {
		st.runPhase(phase)
	}
	// Survivors with the same label form the clusters.
	var labels []uint64
	for lab, mem := range st.member {
		if len(mem) > 0 {
			labels = append(labels, lab)
		}
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })
	clusters := make([]*Cluster, 0, len(labels))
	for _, lab := range labels {
		mem := make([]graph.NodeID, 0, len(st.member[lab]))
		for v := range st.member[lab] {
			mem = append(mem, v)
		}
		sort.Slice(mem, func(i, j int) bool { return mem[i] < mem[j] })
		clusters = append(clusters, &Cluster{Label: lab, Members: mem, Tree: st.trees[lab]})
	}
	// Invariant (III) aggregate: at least half the living nodes survive.
	survived := 0
	for _, c := range clusters {
		survived += len(c.Members)
	}
	if 2*survived < nLiving {
		panic(fmt.Sprintf("decomp: only %d of %d nodes survived a partition", survived, nLiving))
	}
	return clusters
}

func (st *phaseState) runPhase(phase int) {
	bit := uint64(1) << uint(phase)
	// Active blue clusters this phase: labels with phase-bit 0 and >= 1
	// member. stopped[lab] marks clusters done for the phase.
	stopped := make(map[uint64]bool)
	maxSteps := 10 * st.b * st.b // R = O(log² n); early break below
	for step := 0; step < maxSteps; step++ {
		sources := st.activeBlueSources(bit, stopped)
		if len(sources) == 0 {
			return
		}
		dist, claim, parent := st.claimBFS(sources)
		// Gather proposals: living red nodes reached within k.
		proposals := make(map[uint64][]graph.NodeID)
		for v := 0; v < st.g.N(); v++ {
			id := graph.NodeID(v)
			if !st.alive[v] || st.label[v]&bit == 0 {
				continue // dead or blue
			}
			if dist[v] < 0 || dist[v] > st.k {
				continue
			}
			lab := claim[v]
			// Invariant (I'): only same-suffix reds can be within k.
			suffixMask := bit - 1
			if st.label[v]&suffixMask != lab&suffixMask {
				panic(fmt.Sprintf("decomp: separation invariant broken at node %d", v))
			}
			proposals[lab] = append(proposals[lab], id)
		}
		progressed := false
		var labs []uint64
		for lab := range proposals {
			labs = append(labs, lab)
		}
		sort.Slice(labs, func(i, j int) bool { return labs[i] < labs[j] })
		for _, lab := range labs {
			props := proposals[lab]
			sort.Slice(props, func(i, j int) bool { return props[i] < props[j] })
			if 2*len(props)*st.b <= len(st.member[lab]) {
				// Deny: proposers die; cluster stops for the phase.
				for _, u := range props {
					st.kill(u)
				}
				stopped[lab] = true
				continue
			}
			progressed = true
			for _, u := range props {
				st.absorb(u, lab, parent)
			}
		}
		// Clusters that received no proposals at all stop too (nothing
		// within k remains to grab).
		for _, lab := range st.blueLabels(bit) {
			if !stopped[lab] && len(proposals[lab]) == 0 {
				stopped[lab] = true
			}
		}
		if !progressed {
			return
		}
	}
	panic("decomp: phase did not converge within R steps")
}

// activeBlueSources returns the living terminals of all non-stopped blue
// clusters, each annotated with its cluster label, sorted by (label, node).
func (st *phaseState) activeBlueSources(bit uint64, stopped map[uint64]bool) []sourceSeed {
	var out []sourceSeed
	for _, lab := range st.blueLabels(bit) {
		if stopped[lab] {
			continue
		}
		mems := make([]graph.NodeID, 0, len(st.member[lab]))
		for v := range st.member[lab] {
			mems = append(mems, v)
		}
		sort.Slice(mems, func(i, j int) bool { return mems[i] < mems[j] })
		for _, v := range mems {
			out = append(out, sourceSeed{node: v, label: lab})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].label != out[j].label {
			return out[i].label < out[j].label
		}
		return out[i].node < out[j].node
	})
	return out
}

func (st *phaseState) blueLabels(bit uint64) []uint64 {
	var labs []uint64
	for lab, mem := range st.member {
		if lab&bit == 0 && len(mem) > 0 {
			labs = append(labs, lab)
		}
	}
	sort.Slice(labs, func(i, j int) bool { return labs[i] < labs[j] })
	return labs
}

type sourceSeed struct {
	node  graph.NodeID
	label uint64
}

// claimBFS runs a multi-source BFS (through every node of G, any state) to
// depth k from the given sources. It returns, per node: distance (-1 when
// beyond k), the claiming cluster label (nearest; ties to smallest label),
// and the BFS parent toward that cluster.
func (st *phaseState) claimBFS(sources []sourceSeed) (dist []int, claim []uint64, parent []graph.NodeID) {
	n := st.g.N()
	dist = make([]int, n)
	claim = make([]uint64, n)
	parent = make([]graph.NodeID, n)
	for i := range dist {
		dist[i] = -1
		parent[i] = -1
	}
	var order []graph.NodeID
	var queue []graph.NodeID
	for _, s := range sources {
		if dist[s.node] != 0 {
			dist[s.node] = 0
			claim[s.node] = s.label
			queue = append(queue, s.node)
			order = append(order, s.node)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if dist[v] == st.k {
			continue
		}
		for _, nb := range st.g.Neighbors(v) {
			if dist[nb.Node] < 0 {
				dist[nb.Node] = dist[v] + 1
				queue = append(queue, nb.Node)
				order = append(order, nb.Node)
			}
		}
	}
	// Claim pass in BFS order: adopt the smallest-label claim among
	// predecessors (neighbors one level closer).
	for _, u := range order {
		if dist[u] == 0 {
			continue
		}
		best := uint64(1<<63 - 1)
		bestParent := graph.NodeID(-1)
		for _, nb := range st.g.Neighbors(u) {
			w := nb.Node
			if dist[w] == dist[u]-1 && claim[w] < best {
				best = claim[w]
				bestParent = w
			}
		}
		claim[u] = best
		parent[u] = bestParent
	}
	return dist, claim, parent
}

// kill removes u from the living set and from its cluster's terminals (its
// tree keeps u as a nonterminal).
func (st *phaseState) kill(u graph.NodeID) {
	st.alive[u] = false
	delete(st.member[st.label[u]], u)
}

// absorb moves living red node u into the blue cluster lab, relabeling it
// and splicing the BFS path from u to the cluster into lab's Steiner tree.
func (st *phaseState) absorb(u graph.NodeID, lab uint64, parent []graph.NodeID) {
	delete(st.member[st.label[u]], u)
	st.label[u] = lab
	st.member[lab][u] = true
	tree := st.trees[lab]
	// Walk u -> parent(u) -> ... until a node already in the tree; collect
	// the chain, then attach it rootward-first.
	var chain []graph.NodeID
	w := u
	for !tree.Has(w) {
		chain = append(chain, w)
		w = parent[w]
		if w < 0 {
			panic("decomp: BFS path did not reach the cluster tree")
		}
	}
	for i := len(chain) - 1; i >= 0; i-- {
		c := chain[i]
		tree.Parent[c] = w
		tree.Children[w] = insertSorted(tree.Children[w], c)
		tree.DepthOf[c] = tree.DepthOf[w] + 1
		w = c
	}
}

func insertSorted(s []graph.NodeID, v graph.NodeID) []graph.NodeID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}
