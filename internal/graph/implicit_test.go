package graph

import (
	"strings"
	"testing"
)

// naiveGrid3D materializes the 3-D grid through the AddEdge path, emitting
// edges in the same lexicographic order as the implicit builder.
func naiveGrid3D(x, y, z int) *Graph {
	g := New(x * y * z)
	id := func(ix, iy, iz int) NodeID { return NodeID((ix*y+iy)*z + iz) }
	for ix := 0; ix < x; ix++ {
		for iy := 0; iy < y; iy++ {
			for iz := 0; iz < z; iz++ {
				if iz+1 < z {
					g.AddEdge(id(ix, iy, iz), id(ix, iy, iz+1), 0)
				}
				if iy+1 < y {
					g.AddEdge(id(ix, iy, iz), id(ix, iy+1, iz), 0)
				}
				if ix+1 < x {
					g.AddEdge(id(ix, iy, iz), id(ix+1, iy, iz), 0)
				}
			}
		}
	}
	return g.Finalize()
}

// naivePowerLaw materializes the preferential-attachment graph by replaying
// the shared sampling sequence through AddEdge.
func naivePowerLaw(n, m int, seed uint64) *Graph {
	g := New(n)
	powerLawEdges(n, m, seed, func(u, v NodeID) { g.AddEdge(u, v, 0) })
	return g.Finalize()
}

// naiveRingOfCliques materializes the ring of cliques through AddEdge in
// the implicit builder's enumeration order.
func naiveRingOfCliques(k, c int) *Graph {
	n := k * c
	g := New(n)
	for u := 0; u < n; u++ {
		i, pos := u/c, u%c
		for w := u + 1; w < (i+1)*c; w++ {
			g.AddEdge(NodeID(u), NodeID(w), 0)
		}
		if pos == c-1 && i < k-1 {
			g.AddEdge(NodeID(u), NodeID(u+1), 0)
		}
		if u == 0 {
			g.AddEdge(0, NodeID(n-1), 0)
		}
	}
	return g.Finalize()
}

// assertSameCSR checks that two finalized graphs have byte-identical CSR:
// same edge table, same offsets, same adjacency entries (including EdgeID
// and LinkID), and same reverse-link table.
func assertSameCSR(t *testing.T, got, want *Graph) {
	t.Helper()
	if got.N() != want.N() || got.M() != want.M() || got.Links() != want.Links() {
		t.Fatalf("size mismatch: got n=%d m=%d links=%d, want n=%d m=%d links=%d",
			got.N(), got.M(), got.Links(), want.N(), want.M(), want.Links())
	}
	for e := range got.edgeU {
		if got.edgeU[e] != want.edgeU[e] || got.edgeV[e] != want.edgeV[e] {
			t.Fatalf("edge %d: got {%d,%d}, want {%d,%d}", e, got.edgeU[e], got.edgeV[e], want.edgeU[e], want.edgeV[e])
		}
	}
	for v := 0; v <= got.N(); v++ {
		if got.off[v] != want.off[v] {
			t.Fatalf("off[%d]: got %d, want %d", v, got.off[v], want.off[v])
		}
	}
	for l := range got.flat {
		if got.flat[l] != want.flat[l] {
			t.Fatalf("flat[%d]: got %+v, want %+v", l, got.flat[l], want.flat[l])
		}
		if got.rev[l] != want.rev[l] {
			t.Fatalf("rev[%d]: got %d, want %d", l, got.rev[l], want.rev[l])
		}
	}
}

func TestGrid3DGolden(t *testing.T) {
	for _, d := range [][3]int{{1, 1, 1}, {2, 1, 1}, {1, 3, 1}, {1, 1, 4}, {2, 2, 2}, {3, 4, 5}, {5, 1, 4}, {4, 4, 1}} {
		g, err := Grid3D(d[0], d[1], d[2])
		if err != nil {
			t.Fatalf("Grid3D(%v): %v", d, err)
		}
		assertSameCSR(t, g, naiveGrid3D(d[0], d[1], d[2]))
		if !g.Connected() {
			t.Fatalf("Grid3D(%v) disconnected", d)
		}
		if wantD := d[0] + d[1] + d[2] - 3; g.N() > 1 && g.Diameter() != wantD {
			t.Fatalf("Grid3D(%v) diameter %d, want %d", d, g.Diameter(), wantD)
		}
	}
}

func TestPowerLawGolden(t *testing.T) {
	for _, tc := range []struct {
		n, m int
		seed uint64
	}{{5, 1, 1}, {4, 3, 2}, {30, 2, 7}, {64, 3, 9}, {100, 1, 3}} {
		g, err := PowerLaw(tc.n, tc.m, tc.seed)
		if err != nil {
			t.Fatalf("PowerLaw(%+v): %v", tc, err)
		}
		assertSameCSR(t, g, naivePowerLaw(tc.n, tc.m, tc.seed))
		if !g.Connected() {
			t.Fatalf("PowerLaw(%+v) disconnected", tc)
		}
		wantM := tc.m*(tc.m+1)/2 + (tc.n-tc.m-1)*tc.m
		if g.M() != wantM {
			t.Fatalf("PowerLaw(%+v) m=%d, want %d", tc, g.M(), wantM)
		}
	}
	// Determinism in seed; sensitivity to it.
	a, _ := PowerLaw(50, 2, 11)
	b, _ := PowerLaw(50, 2, 11)
	assertSameCSR(t, a, b)
	c, _ := PowerLaw(50, 2, 12)
	same := true
	for e := range a.edgeU {
		if a.edgeU[e] != c.edgeU[e] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("PowerLaw identical across different seeds")
	}
}

func TestPowerLawIsHeavyTailed(t *testing.T) {
	g, err := PowerLaw(2000, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	max := 0
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(NodeID(v)); d > max {
			max = d
		}
	}
	// Average degree is ~4; preferential attachment must grow hubs far
	// beyond it.
	if max < 30 {
		t.Fatalf("max degree %d; expected a heavy-tailed hub", max)
	}
}

func TestRingOfCliquesGolden(t *testing.T) {
	for _, tc := range [][2]int{{3, 1}, {3, 2}, {4, 3}, {5, 4}, {8, 1}, {3, 6}} {
		g, err := RingOfCliques(tc[0], tc[1])
		if err != nil {
			t.Fatalf("RingOfCliques(%v): %v", tc, err)
		}
		assertSameCSR(t, g, naiveRingOfCliques(tc[0], tc[1]))
		if !g.Connected() {
			t.Fatalf("RingOfCliques(%v) disconnected", tc)
		}
		wantM := tc[0]*tc[1]*(tc[1]-1)/2 + tc[0]
		if g.M() != wantM {
			t.Fatalf("RingOfCliques(%v) m=%d, want %d", tc, g.M(), wantM)
		}
	}
}

func TestImplicitOverflowErrors(t *testing.T) {
	cases := []struct {
		name string
		f    func() (*Graph, error)
	}{
		// 1300^3 = 2.197e9 nodes > 2^31-1.
		{"grid3d-nodes", func() (*Graph, error) { return Grid3D(1300, 1300, 1300) }},
		// Node count fits, but 2m links would not fit the int32 LinkID space.
		{"grid3d-links", func() (*Graph, error) { return Grid3D(715827882, 3, 1) }},
		{"pa-nodes", func() (*Graph, error) { return PowerLaw(MaxNodes+1, 1, 1) }},
		{"pa-links", func() (*Graph, error) { return PowerLaw(1<<30, 4, 1) }},
		{"ring-nodes", func() (*Graph, error) { return RingOfCliques(1<<16, 1<<16) }},
		{"ring-links", func() (*Graph, error) { return RingOfCliques(3, 1<<15) }},
	}
	for _, tc := range cases {
		g, err := tc.f()
		if err == nil || g != nil {
			t.Fatalf("%s: expected overflow error, got graph=%v err=%v", tc.name, g, err)
		}
		if !strings.Contains(err.Error(), "32-bit") {
			t.Fatalf("%s: error %q does not name the 32-bit id space", tc.name, err)
		}
	}
	// Bad-parameter (not overflow) errors.
	if _, err := Grid3D(0, 1, 1); err == nil {
		t.Fatal("Grid3D(0,1,1): want error")
	}
	if _, err := PowerLaw(3, 3, 1); err == nil {
		t.Fatal("PowerLaw(3,3,1): want error")
	}
	if _, err := RingOfCliques(2, 3); err == nil {
		t.Fatal("RingOfCliques(2,3): want error")
	}
}

func TestFromSpec(t *testing.T) {
	ok := []struct {
		spec string
		n, m int
	}{
		{"path:5", 5, 4},
		{"cycle:6", 6, 6},
		{"grid:3x4", 12, 17},
		{"grid3d:2x3x4", 24, 46},
		{"star:7", 7, 6},
		{"tree:7", 7, 6},
		{"complete:5", 5, 10},
		{"er:n=10,m=15,seed=3", 10, 15},
		{"er:m=15,n=10", 10, 15},
		{"pa:n=10,m=2,seed=4", 10, 17},
		{"ring:k=4,c=3", 12, 16},
	}
	for _, tc := range ok {
		g, err := FromSpec(tc.spec)
		if err != nil {
			t.Fatalf("FromSpec(%q): %v", tc.spec, err)
		}
		if g.N() != tc.n || g.M() != tc.m {
			t.Fatalf("FromSpec(%q): n=%d m=%d, want n=%d m=%d", tc.spec, g.N(), g.M(), tc.n, tc.m)
		}
		if !g.Final() {
			t.Fatalf("FromSpec(%q): graph not finalized", tc.spec)
		}
	}
	bad := []string{
		"", "grid3d", "bogus:5", "grid:3", "grid:3x4x5", "grid3d:axbxc",
		"pa:n=10", "pa:m=2", "pa:n=10,m=2,seed=1,extra=9", "ring:k=4",
		"er:n=10,m=15,seed=1,seed=2", "path:x", "grid3d:1300x1300x1300",
	}
	for _, spec := range bad {
		if _, err := FromSpec(spec); err == nil {
			t.Fatalf("FromSpec(%q): want error", spec)
		}
	}
}

// The implicit builders must never read back through the materialized
// adjacency path: a finalized implicit graph answers every query the
// AddEdge path answers.
func TestImplicitGraphQueries(t *testing.T) {
	g, err := Grid3D(3, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.LinkSrc(g.LinkBetween(13, 14)) != 13 {
		t.Fatal("LinkSrc broken on implicit graph")
	}
	l := g.LinkBetween(4, 13)
	if l < 0 || g.LinkDst(l) != 13 || g.ReverseLink(g.ReverseLink(l)) != l {
		t.Fatal("link queries broken on implicit graph")
	}
	if g.EdgeBetween(0, 26) != -1 || !g.HasEdge(0, 1) {
		t.Fatal("edge queries broken on implicit graph")
	}
	if g.Weighted() || g.Weight(0) != 0 {
		t.Fatal("implicit graphs are unweighted")
	}
}
