// Minimum spanning tree (Corollary 1.4): deterministic asynchronous MST
// with Õ(m) messages. The example computes the MST of a weighted grid
// asynchronously and verifies it against centralized Kruskal.
package main

import (
	"fmt"

	dsync "repro"
)

func main() {
	g := dsync.WithRandomWeights(dsync.Grid(5, 6), 99)
	fmt.Printf("network: n=%d m=%d (distinct random weights)\n", g.N(), g.M())

	res := dsync.AsyncMST(g, dsync.RandomDelays(7))
	fmt.Printf("async run: time=%.1f msgs=%d\n", res.Time, res.Msgs)

	// Collect the distributed answer.
	gotEdges := map[[2]dsync.NodeID]bool{}
	var leader dsync.NodeID = -1
	for v := 0; v < g.N(); v++ {
		out := res.Outputs[dsync.NodeID(v)].(dsync.MSTResult)
		if out.Parent < 0 {
			leader = dsync.NodeID(v)
		}
		for _, nb := range out.TreeNeighbors {
			key := [2]dsync.NodeID{dsync.NodeID(v), nb}
			if key[0] > key[1] {
				key[0], key[1] = key[1], key[0]
			}
			gotEdges[key] = true
		}
	}

	// Verify against Kruskal.
	var gotWeight, wantWeight int64
	for i := 0; i < g.M(); i++ {
		e := g.Edge(dsync.EdgeID(i))
		if gotEdges[[2]dsync.NodeID{e.U, e.V}] {
			gotWeight += e.Weight
		}
	}
	wantWeight = g.MSTWeight()
	fmt.Printf("fragment leader: node %d\n", leader)
	fmt.Printf("edges=%d (want %d), weight=%d (Kruskal %d), correct=%v\n",
		len(gotEdges), g.N()-1, gotWeight, wantWeight,
		len(gotEdges) == g.N()-1 && gotWeight == wantWeight)
}
