package bench

import (
	"io"
	"reflect"
	"time"

	"repro/internal/apps"
	"repro/internal/graph"
	"repro/internal/syncrun"
)

// E13EngineThroughput measures the dense lockstep engine itself: one BFS
// per row, wall-clock per execution mode, messages per second in Single
// mode, and a determinism check that Single and Multi agree bit-for-bit on
// (T, M). It is the experiment-table view of the engine microbenchmarks in
// internal/async and internal/syncrun.
func E13EngineThroughput(w io.Writer) {
	t := newTable(w, "E13: lockstep engine throughput by execution mode",
		"BFS from node 0; msgs = 2m; modes must agree exactly (det column).")
	t.row("graph", "n", "m", "rounds", "single(ms)", "multi(ms)", "Kmsg/s", "det")
	rows := []struct {
		name string
		g    *graph.Graph
	}{
		{"grid 50x50", graph.Grid(50, 50)},
		{"er n=10k m=40k", graph.RandomConnected(10_000, 40_000, 11)},
		{"er n=40k m=160k", graph.RandomConnected(40_000, 160_000, 12)},
	}
	for _, r := range rows {
		mk := func(graph.NodeID) syncrun.Handler {
			return &apps.BFS{Sources: []graph.NodeID{0}}
		}
		t0 := time.Now()
		single := syncrun.New(r.g, mk).WithMode(syncrun.ModeSingle).Run()
		dSingle := time.Since(t0)
		t1 := time.Now()
		multi := syncrun.New(r.g, mk).WithMode(syncrun.ModeMulti).Run()
		dMulti := time.Since(t1)
		det := single.T == multi.T && single.M == multi.M &&
			single.Rounds == multi.Rounds &&
			reflect.DeepEqual(single.Outputs, multi.Outputs)
		t.row(r.name, r.g.N(), r.g.M(), single.Rounds,
			float64(dSingle.Microseconds())/1000,
			float64(dMulti.Microseconds())/1000,
			float64(single.M)/dSingle.Seconds()/1000, det)
	}
	t.flush()
}
