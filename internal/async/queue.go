package async

// eventQueue is a bucketed calendar queue specialized for this simulator:
// all delays lie in (0,1], so every pending event's timestamp is within one
// normalized time unit of the clock. The unit is split into cqBuckets
// ticks; a rotating wheel of cqBuckets slots holds the events of the next
// full unit, one tick per slot, and each slot is a small hand-rolled
// binary min-heap ordered by (t, seq). Events beyond the wheel horizon —
// only possible for pathological adversaries that violate the (0,1] delay
// contract before the simulator's own validation fires, or for
// floating-point edge cases at exactly t = now+1 — fall back to a global
// overflow heap and migrate onto the wheel as the clock advances, so the
// queue degrades to the classic binary heap instead of breaking.
//
// Hand-rolled heaps matter here: container/heap's interface signature
// boxes every pushed event into an `any`, one allocation per event. The
// specialized heaps move events by value and allocate only on slice
// growth, which the wheel amortizes away by reusing slot capacity.
//
// Pop order is exactly the seed heap's (t, seq) order: tick(t) is a
// monotone function of t, slots are drained in tick order, and each slot
// orders its events by (t, seq).
type eventQueue struct {
	wheel    [cqBuckets][]event
	overflow []event
	size     int
	onWheel  int
	cur      int64 // current tick; all queued events have tick >= cur
}

// cqBuckets is the wheel resolution (a power of two so the slot index is a
// mask). 256 slots over the unit delay range keeps slots near-singleton
// for diffuse adversaries while costing 4KB of slot headers.
const cqBuckets = 256

func cqTick(t float64) int64 { return int64(t * cqBuckets) }

func (q *eventQueue) push(ev event) {
	q.size++
	k := cqTick(ev.t)
	if k < q.cur {
		// Floating-point underflow of tick vs. the clock's own tick; the
		// event still pops in (t,seq) order from the current slot.
		k = q.cur
	}
	if k >= q.cur+cqBuckets {
		evHeapPush(&q.overflow, ev)
		return
	}
	q.onWheel++
	evHeapPush(&q.wheel[k&(cqBuckets-1)], ev)
}

func (q *eventQueue) empty() bool { return q.size == 0 }

// pop removes and returns the earliest event by (t, seq).
func (q *eventQueue) pop() event {
	if q.size == 0 {
		panic("async: pop from empty event queue")
	}
	for {
		slot := &q.wheel[q.cur&(cqBuckets-1)]
		if len(*slot) > 0 {
			q.size--
			q.onWheel--
			return evHeapPop(slot)
		}
		if q.onWheel == 0 {
			// Nothing on the wheel: jump straight to the first overflow tick.
			q.cur = cqTick(q.overflow[0].t)
		} else {
			q.cur++
		}
		// Overflow events that entered the horizon move onto the wheel.
		for len(q.overflow) > 0 && cqTick(q.overflow[0].t) < q.cur+cqBuckets {
			ev := evHeapPop(&q.overflow)
			k := cqTick(ev.t)
			if k < q.cur {
				k = q.cur
			}
			q.onWheel++
			evHeapPush(&q.wheel[k&(cqBuckets-1)], ev)
		}
	}
}

func evLess(a, b event) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

func evHeapPush(h *[]event, ev event) {
	*h = append(*h, ev)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !evLess(s[i], s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func evHeapPop(h *[]event) event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	// Zero the vacated slot so the retained backing array does not pin the
	// popped event's Msg body (handlers may drop large payloads).
	s[n] = event{}
	*h = s[:n]
	s = s[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && evLess(s[l], s[least]) {
			least = l
		}
		if r < n && evLess(s[r], s[least]) {
			least = r
		}
		if least == i {
			break
		}
		s[i], s[least] = s[least], s[i]
		i = least
	}
	return top
}
